package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"
)

// Flight recorder: the telemetry subsystem's black box. The sampler's
// per-tick rates are watched for the anomaly signatures that per-run
// aggregates average away — abort storms, stalled sweep cells, STM-demotion
// cascades — and on trigger (or SIGQUIT) the rolling state is captured while
// it still shows the anomaly: every retained event-log segment as headered
// JSONL, the registry as Prometheus text, the full series history, and
// optionally pprof CPU/heap profiles, all in one timestamped directory.

// FlightConfig configures the recorder. A zero threshold disables that
// trigger; Dir is required.
type FlightConfig struct {
	Dir          string        // parent for dump directories
	AbortRate    float64       // aborts/sec that counts as a storm
	StallTimeout time.Duration // a cell running longer than this is stalled
	DemotionRate float64       // STM mode-switches/sec that counts as a cascade
	Profile      bool          // also capture pprof CPU + heap
	CPUDuration  time.Duration // CPU profile length (default 500ms)
	Cooldown     time.Duration // min spacing between dumps (default 30s)
}

// FlightInfo describes one completed dump.
type FlightInfo struct {
	Time   string `json:"time"`
	Reason string `json:"reason"`
	Detail string `json:"detail,omitempty"`
	Dir    string `json:"dir"`
}

// FlightRecorder watches a Telemetry bundle and dumps state on anomaly.
type FlightRecorder struct {
	cfg FlightConfig
	tel *Telemetry

	triggers *Counter

	mu      sync.Mutex
	last    time.Time
	dumping bool
	dumps   []FlightInfo
	wg      sync.WaitGroup
}

func newFlightRecorder(cfg FlightConfig, tel *Telemetry) *FlightRecorder {
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 500 * time.Millisecond
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	return &FlightRecorder{
		cfg:      cfg,
		tel:      tel,
		triggers: tel.Registry.Counter("flight_triggers_total"),
	}
}

// check is the sampler hook: inspect this tick's rates and the worker table.
func (f *FlightRecorder) check(now time.Time, rates map[string]float64) {
	if f.cfg.AbortRate > 0 {
		if r := rates["htm_tx_aborts_total"]; r > f.cfg.AbortRate {
			f.Trigger("abort-storm", fmt.Sprintf("abort rate %.1f/s > %.1f/s", r, f.cfg.AbortRate))
			return
		}
	}
	if f.cfg.DemotionRate > 0 {
		if r := rates[`tm_mode_switches_total{to="stm"}`]; r > f.cfg.DemotionRate {
			f.Trigger("stm-demotion-cascade", fmt.Sprintf("STM demotion rate %.1f/s > %.1f/s", r, f.cfg.DemotionRate))
			return
		}
	}
	if w := f.tel.WorkerTable(); f.cfg.StallTimeout > 0 && w != nil {
		if stalled := w.Stalled(now, f.cfg.StallTimeout); len(stalled) > 0 {
			f.Trigger("stalled-cell", fmt.Sprintf("worker %d on %q for > %s",
				stalled[0].ID, stalled[0].Cell, f.cfg.StallTimeout))
		}
	}
}

// Trigger requests a dump for reason. Dumps run in the background (Wait
// blocks until they land); triggers inside the cooldown window or while a
// dump is in progress are dropped.
func (f *FlightRecorder) Trigger(reason, detail string) {
	now := time.Now()
	f.mu.Lock()
	if f.dumping || (!f.last.IsZero() && now.Sub(f.last) < f.cfg.Cooldown) {
		f.mu.Unlock()
		return
	}
	f.dumping = true
	f.last = now
	f.mu.Unlock()

	f.triggers.Inc(0)
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		info, err := f.dump(now, reason, detail)
		f.mu.Lock()
		f.dumping = false
		if err == nil {
			f.dumps = append(f.dumps, info)
		}
		f.mu.Unlock()
		if err != nil {
			fmt.Fprintf(os.Stderr, "flight recorder: dump failed: %v\n", err)
		} else {
			fmt.Fprintf(os.Stderr, "flight recorder: %s → %s\n", reason, info.Dir)
		}
	}()
}

// Wait blocks until all in-flight dumps have finished.
func (f *FlightRecorder) Wait() { f.wg.Wait() }

// Dumps returns the completed dumps, oldest first.
func (f *FlightRecorder) Dumps() []FlightInfo {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FlightInfo(nil), f.dumps...)
}

func (f *FlightRecorder) dump(now time.Time, reason, detail string) (FlightInfo, error) {
	stamp := now.UTC().Format("20060102T150405.000")
	dir := filepath.Join(f.cfg.Dir, "flight-"+stamp+"-"+sanitizeLabel(reason))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return FlightInfo{}, err
	}
	info := FlightInfo{
		Time:   now.UTC().Format(time.RFC3339Nano),
		Reason: reason,
		Detail: detail,
		Dir:    dir,
	}

	if err := writeJSONFile(filepath.Join(dir, "info.json"), info); err != nil {
		return info, err
	}
	if _, err := f.tel.Log.DumpDir(dir); err != nil {
		return info, err
	}
	if err := writeFileWith(filepath.Join(dir, "metrics.prom"), f.tel.Registry.WritePromText); err != nil {
		return info, err
	}
	if err := writeJSONFile(filepath.Join(dir, "series.json"), f.tel.Sampler.Snapshot(0)); err != nil {
		return info, err
	}
	if err := writeJSONFile(filepath.Join(dir, "state.json"), f.tel.State(0)); err != nil {
		return info, err
	}
	if f.cfg.Profile {
		if err := captureProfiles(dir, f.cfg.CPUDuration); err != nil {
			return info, err
		}
	}
	return info, nil
}

func captureProfiles(dir string, cpuDur time.Duration) error {
	cf, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return err
	}
	// StartCPUProfile fails if another profile is running (another dump or
	// the host process); skip the CPU capture rather than abort the dump.
	if err := pprof.StartCPUProfile(cf); err == nil {
		time.Sleep(cpuDur)
		pprof.StopCPUProfile()
	}
	if err := cf.Close(); err != nil {
		return err
	}
	hf, err := os.Create(filepath.Join(dir, "heap.pprof"))
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(hf); err != nil {
		hf.Close()
		return err
	}
	return hf.Close()
}

func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeFileWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
