package obs

import (
	"sync"
	"time"
)

// WorkerTable is the live view of a worker pool: which cell each sweep
// worker is running, since when, and how much it has finished. The sweep
// scheduler publishes Begin/End/NoteSteal transitions; the dashboard renders
// the table and the flight recorder scans it for stalled cells. Transitions
// are off the simulated hot path (one per cell, not per transaction), so a
// mutex is fine.
type WorkerTable struct {
	mu   sync.Mutex
	rows []WorkerRow
}

// WorkerRow is one worker's state snapshot.
type WorkerRow struct {
	ID      int    `json:"id"`
	State   string `json:"state"` // "idle" or "run"
	Cell    string `json:"cell,omitempty"`
	SinceMs int64  `json:"since_ms"` // unix ms of the last transition
	Done    uint64 `json:"done"`     // cells finished
	Steals  uint64 `json:"steals"`   // cells obtained by stealing
}

// NewWorkerTable returns a table of n idle workers.
func NewWorkerTable(n int) *WorkerTable {
	t := &WorkerTable{rows: make([]WorkerRow, n)}
	now := time.Now().UnixMilli()
	for i := range t.rows {
		t.rows[i] = WorkerRow{ID: i, State: "idle", SinceMs: now}
	}
	return t
}

// Begin marks worker id as running cell.
func (t *WorkerTable) Begin(id int, cell string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.rows) {
		return
	}
	t.rows[id].State = "run"
	t.rows[id].Cell = cell
	t.rows[id].SinceMs = time.Now().UnixMilli()
}

// End marks worker id idle and counts the finished cell.
func (t *WorkerTable) End(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.rows) {
		return
	}
	t.rows[id].State = "idle"
	t.rows[id].Cell = ""
	t.rows[id].SinceMs = time.Now().UnixMilli()
	t.rows[id].Done++
}

// NoteSteal counts a cell worker id obtained from another worker's queue.
func (t *WorkerTable) NoteSteal(id int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id < 0 || id >= len(t.rows) {
		return
	}
	t.rows[id].Steals++
}

// Snapshot copies all rows.
func (t *WorkerTable) Snapshot() []WorkerRow {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]WorkerRow(nil), t.rows...)
}

// Stalled returns the workers that have been running one cell for longer
// than timeout as of now.
func (t *WorkerTable) Stalled(now time.Time, timeout time.Duration) []WorkerRow {
	if timeout <= 0 {
		return nil
	}
	cutoff := now.Add(-timeout).UnixMilli()
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []WorkerRow
	for _, r := range t.rows {
		if r.State == "run" && r.SinceMs <= cutoff {
			out = append(out, r)
		}
	}
	return out
}
