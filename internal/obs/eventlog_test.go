package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestEventLogDrainAndEvict(t *testing.T) {
	l := NewEventLog(2)
	for i := 0; i < 3; i++ {
		tr := NewTracer(1, 8)
		tr.Ring(0).Record(mkBegin(0, uint64(i)))
		tr.Ring(0).Record(mkCommit(0, uint64(i)+10, 5))
		l.Drain("cell-"+itoa(i), tr)
		if tr.Recorded() != 0 {
			t.Fatal("Drain did not reset the tracer")
		}
	}
	if l.Len() != 2 || l.Added() != 3 || l.Evicted() != 1 {
		t.Fatalf("Len=%d Added=%d Evicted=%d", l.Len(), l.Added(), l.Evicted())
	}
	segs := l.Snapshot()
	if segs[0].Label != "cell-1" || segs[1].Label != "cell-2" {
		t.Fatalf("labels = %q, %q (oldest evicted?)", segs[0].Label, segs[1].Label)
	}
	if segs[0].Recorded != 2 || segs[0].Dropped != 0 || len(segs[0].Events) != 2 {
		t.Fatalf("segment provenance = %+v", segs[0])
	}
}

func TestEventLogDumpDirValidates(t *testing.T) {
	dir := t.TempDir()
	l := NewEventLog(0)
	tr := NewTracer(2, 8)
	tr.Ring(0).Record(mkBegin(0, 1))
	tr.Ring(0).Record(mkCommit(0, 9, 5))
	tr.Ring(1).Record(mkBegin(1, 2))
	tr.Ring(1).Record(mkAbort(1, 7, 3, 1, 0, 12, 0))
	l.Drain("p8/fig2 4t#1", tr)

	tr2 := NewTracer(1, 8)
	tr2.Ring(0).Record(mkBegin(0, 0)) // clocks restart: must live in its own file
	l.Drain("second", tr2)

	paths, err := l.DumpDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("paths = %v", paths)
	}
	if base := filepath.Base(paths[0]); base != "rings-000-p8_fig2_4t_1.jsonl" {
		t.Fatalf("sanitised name = %q", base)
	}
	wantEvents := []int{4, 1}
	for i, p := range paths {
		n, err := ValidateFile(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if n != wantEvents[i] {
			t.Fatalf("%s: %d events, want %d", p, n, wantEvents[i])
		}
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		first := strings.SplitN(string(raw), "\n", 2)[0]
		if !strings.Contains(first, `"kind":"header"`) {
			t.Fatalf("%s first line is not a header: %s", p, first)
		}
	}
}

func TestSegmentHeaderCountsDrops(t *testing.T) {
	l := NewEventLog(4)
	tr := NewTracer(1, 4) // tiny ring: 8 records drop 4
	for i := 0; i < 8; i++ {
		tr.Ring(0).Record(mkBegin(0, uint64(i)))
	}
	l.Drain("drops", tr)
	seg := l.Snapshot()[0]
	h := seg.Header()
	if h.Recorded != 8 || h.Dropped != 4 || h.Events != 4 {
		t.Fatalf("header = %+v", h)
	}
	dir := t.TempDir()
	paths, err := l.DumpDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateFile(paths[0]); err != nil {
		t.Fatalf("dropped-segment stream invalid: %v", err)
	}
}
