package obs

import (
	"fmt"
	"io"
	"sort"

	"htmcmp/internal/stats"
)

// RetryBuckets is the number of retry-depth buckets in the abort histogram:
// depths 0..3 get their own bucket, 4 and deeper share the last.
const RetryBuckets = 5

// ReportOptions configures Aggregate.
type ReportOptions struct {
	// TopN is how many conflicting lines to keep in TopLines (default 15).
	TopN int
	// LineSize converts a line index back to a byte address for region
	// lookup (0 disables address/region resolution).
	LineSize int
	// RegionAt names the labelled region containing a byte address, or ""
	// (typically mem.Space.RegionAt). Only consulted when LineSize > 0.
	RegionAt func(addr uint64) string
}

// LineCount is one row of the abort-attribution table: a conflict-detection
// line and how many aborts were attributed to it.
type LineCount struct {
	Line   uint32  `json:"line"`
	Addr   uint64  `json:"addr"`
	Region string  `json:"region,omitempty"`
	Aborts uint64  `json:"aborts"`
	Share  float64 `json:"share"` // fraction of line-attributed aborts
}

// ReasonHist is the abort count for one reason across retry depths.
type ReasonHist struct {
	Reason string               `json:"reason"`
	Total  uint64               `json:"total"`
	Depth  [RetryBuckets]uint64 `json:"by_retry_depth"` // 0,1,2,3,4+
}

// Report is the in-memory aggregation of an event stream: the
// abort-attribution tables behind the paper's Figure 9-style breakdowns.
type Report struct {
	Events  uint64 `json:"events"`
	Begins  uint64 `json:"begins"`
	Commits uint64 `json:"commits"`
	Aborts  uint64 `json:"aborts"`
	// ModeSwitches counts adaptive-runtime site transitions in the stream
	// (0 for static-policy runs).
	ModeSwitches uint64 `json:"mode_switches,omitempty"`
	// Dropped is how many events the rings overwrote before aggregation
	// (0 unless the run outgrew the ring capacity).
	Dropped uint64 `json:"dropped,omitempty"`

	// Reasons is the abort-reason × retry-depth histogram, most frequent
	// reason first.
	Reasons []ReasonHist `json:"reasons,omitempty"`

	// TopLines ranks conflict-detection lines by attributed aborts.
	TopLines []LineCount `json:"top_lines,omitempty"`

	// Latency percentiles of per-transaction virtual duration (commit and
	// abort events' Dur), in cost units.
	LatP50 float64 `json:"lat_p50"`
	LatP90 float64 `json:"lat_p90"`
	LatP99 float64 `json:"lat_p99"`
	LatMax float64 `json:"lat_max"`

	// Footprint percentiles over committed transactions (distinct lines).
	ReadLinesP90  float64 `json:"read_lines_p90"`
	WriteLinesP90 float64 `json:"write_lines_p90"`
}

// retryBucket maps a retry depth to its histogram bucket.
func retryBucket(d uint16) int {
	if d >= RetryBuckets-1 {
		return RetryBuckets - 1
	}
	return int(d)
}

// Aggregate folds an event stream into a Report.
func Aggregate(events []Event, opt ReportOptions) *Report {
	if opt.TopN <= 0 {
		opt.TopN = 15
	}
	r := &Report{Events: uint64(len(events))}

	byReason := map[uint8]*ReasonHist{}
	byLine := map[uint32]uint64{}
	var lats []float64
	var readFp, writeFp []int

	for _, ev := range events {
		switch ev.Kind {
		case KindBegin:
			r.Begins++
		case KindCommit:
			r.Commits++
			lats = append(lats, float64(ev.Dur))
			readFp = append(readFp, int(ev.ReadLines))
			writeFp = append(writeFp, int(ev.WriteLines))
		case KindAbort:
			r.Aborts++
			lats = append(lats, float64(ev.Dur))
			h := byReason[ev.Reason]
			if h == nil {
				h = &ReasonHist{Reason: ReasonName(ev.Reason)}
				byReason[ev.Reason] = h
			}
			h.Total++
			h.Depth[retryBucket(ev.Retry)]++
			if ev.Line != NoLine {
				byLine[ev.Line]++
			}
		case KindModeSwitch:
			r.ModeSwitches++
		}
	}

	for _, h := range byReason {
		r.Reasons = append(r.Reasons, *h)
	}
	sort.Slice(r.Reasons, func(i, j int) bool {
		if r.Reasons[i].Total != r.Reasons[j].Total {
			return r.Reasons[i].Total > r.Reasons[j].Total
		}
		return r.Reasons[i].Reason < r.Reasons[j].Reason
	})

	var lineTotal uint64
	for _, n := range byLine {
		lineTotal += n
	}
	for line, n := range byLine {
		lc := LineCount{Line: line, Aborts: n}
		if lineTotal > 0 {
			lc.Share = float64(n) / float64(lineTotal)
		}
		if opt.LineSize > 0 {
			lc.Addr = uint64(line) * uint64(opt.LineSize)
			if opt.RegionAt != nil {
				lc.Region = opt.RegionAt(lc.Addr)
			}
		}
		r.TopLines = append(r.TopLines, lc)
	}
	sort.Slice(r.TopLines, func(i, j int) bool {
		if r.TopLines[i].Aborts != r.TopLines[j].Aborts {
			return r.TopLines[i].Aborts > r.TopLines[j].Aborts
		}
		return r.TopLines[i].Line < r.TopLines[j].Line
	})
	if len(r.TopLines) > opt.TopN {
		r.TopLines = r.TopLines[:opt.TopN]
	}

	r.LatP50 = stats.Percentile(lats, 50)
	r.LatP90 = stats.Percentile(lats, 90)
	r.LatP99 = stats.Percentile(lats, 99)
	r.LatMax = stats.Max(lats)
	r.ReadLinesP90 = stats.PercentileInts(readFp, 90)
	r.WriteLinesP90 = stats.PercentileInts(writeFp, 90)
	return r
}

// Fprint renders the report as the abort-attribution tables htmtrace -events
// prints.
func (r *Report) Fprint(w io.Writer) {
	fmt.Fprintf(w, "events: %d (begins %d, commits %d, aborts %d", r.Events, r.Begins, r.Commits, r.Aborts)
	if r.Begins > 0 {
		fmt.Fprintf(w, ", abort ratio %.1f%%", 100*float64(r.Aborts)/float64(r.Begins))
	}
	fmt.Fprint(w, ")\n")
	if r.Dropped > 0 {
		fmt.Fprintf(w, "WARNING: %d events dropped (ring overflow); counts below are partial\n", r.Dropped)
	}
	if r.ModeSwitches > 0 {
		fmt.Fprintf(w, "adaptive mode switches: %d\n", r.ModeSwitches)
	}

	fmt.Fprintf(w, "tx latency (vclock units): p50 %.0f  p90 %.0f  p99 %.0f  max %.0f\n",
		r.LatP50, r.LatP90, r.LatP99, r.LatMax)
	fmt.Fprintf(w, "committed footprint p90: %.0f read lines, %.0f write lines\n",
		r.ReadLinesP90, r.WriteLinesP90)

	if len(r.Reasons) > 0 {
		fmt.Fprint(w, "\naborts by reason x retry depth (columns: depth 0,1,2,3,4+):\n")
		fmt.Fprintf(w, "  %-20s %8s  %8s %8s %8s %8s %8s\n", "reason", "total", "0", "1", "2", "3", "4+")
		for _, h := range r.Reasons {
			fmt.Fprintf(w, "  %-20s %8d  %8d %8d %8d %8d %8d\n",
				h.Reason, h.Total, h.Depth[0], h.Depth[1], h.Depth[2], h.Depth[3], h.Depth[4])
		}
	}

	if len(r.TopLines) > 0 {
		fmt.Fprint(w, "\ntop conflicting lines:\n")
		fmt.Fprintf(w, "  %-8s %-12s %8s %7s  %s\n", "line", "addr", "aborts", "share", "region")
		for _, lc := range r.TopLines {
			region := lc.Region
			if region == "" {
				region = "?"
			}
			fmt.Fprintf(w, "  %-8d %#-12x %8d %6.1f%%  %s\n",
				lc.Line, lc.Addr, lc.Aborts, 100*lc.Share, region)
		}
	}
}
