package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterStripesSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	for hint := 0; hint < 3*counterStripes; hint++ {
		c.Add(hint, 2)
	}
	if got := c.Value(); got != uint64(2*3*counterStripes) {
		t.Fatalf("Value = %d, want %d", got, 2*3*counterStripes)
	}
	c.Inc(-1) // negative hints must be safe
	if got := c.Value(); got != uint64(2*3*counterStripes)+1 {
		t.Fatalf("Value after Inc(-1) = %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(hint int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc(hint)
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("Value = %d, want %d", got, workers*per)
	}
}

func TestRegistryGetOrCreateIsStable(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a_total") != r.Counter("a_total") {
		t.Fatal("Counter handle not stable across lookups")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge handle not stable across lookups")
	}
	if r.Histogram("h", []uint64{1, 2}) != r.Histogram("h", []uint64{9}) {
		t.Fatal("Histogram handle not stable across lookups")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("Value = %d, want 4", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_ms", []uint64{10, 100})
	for _, v := range []uint64{5, 10, 11, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// <=10: {5,10}; <=100: {11,100}; +Inf: {1000}
	want := []uint64{2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Total != 5 || s.Sum != 5+10+11+100+1000 {
		t.Fatalf("Total=%d Sum=%d", s.Total, s.Sum)
	}
}

func TestRegistrySortedListings(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total")
	r.Counter("a_total")
	r.Gauge("m")
	cs := r.Counters()
	if len(cs) != 2 || cs[0].Name() != "a_total" || cs[1].Name() != "z_total" {
		t.Fatalf("Counters not sorted: %v, %v", cs[0].Name(), cs[1].Name())
	}
	vals := r.CounterValues()
	if len(vals) != 2 {
		t.Fatalf("CounterValues len = %d", len(vals))
	}
	if gv := r.GaugeValues(); len(gv) != 1 || gv["m"] != 0 {
		t.Fatalf("GaugeValues = %v", gv)
	}
}

func TestEngineMetricsReasonLabelsAndClamp(t *testing.T) {
	r := NewRegistry()
	m := NewEngineMetrics(r, 3, 2)
	m.Begins.Inc(0)
	m.Commits.Inc(0)
	m.Abort(0, 1)
	m.Abort(1, 200) // out-of-vocabulary code clamps to the last handle
	if got := m.Aborts.Value(); got != 2 {
		t.Fatalf("Aborts = %d, want 2", got)
	}
	if got := m.ByReason[1].Value() + m.ByReason[2].Value(); got != 2 {
		t.Fatalf("per-reason sum = %d, want 2", got)
	}
	m.ModeSwitch(0, 1)
	m.ModeSwitch(0, 99)
	if got := m.ByMode[1].Value(); got != 2 {
		t.Fatalf("ByMode[1] = %d, want 2 (clamped)", got)
	}
	for _, c := range m.ByReason {
		if !strings.HasPrefix(c.Name(), `htm_tx_aborts_by_reason_total{reason="`) {
			t.Fatalf("reason counter name %q", c.Name())
		}
	}
	for _, c := range m.ByMode {
		if !strings.HasPrefix(c.Name(), `tm_mode_switches_total{to="`) {
			t.Fatalf("mode counter name %q", c.Name())
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc(3)
	}
}
