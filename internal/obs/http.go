package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Embedded HTTP exposition: /metrics (Prometheus text 0.0.4), /api/state
// (JSON snapshot), /api/stream (the same snapshot pushed as Server-Sent
// Events at the sampler's cadence), and / (the self-contained dashboard).
// The server reads registry atomics and mutex-guarded snapshots only, so
// scrapes never perturb a running sweep.

type httpServer struct {
	ln  net.Listener
	srv *http.Server
}

func startHTTPServer(addrSpec string, t *Telemetry) (*httpServer, error) {
	ln, err := net.Listen("tcp", addrSpec)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := t.Registry.WritePromText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/api/state", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := enc.Encode(t.State(streamPoints)); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/api/stream", func(w http.ResponseWriter, r *http.Request) {
		serveSSE(w, r, t)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, dashboardHTML)
	})
	s := &httpServer{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// Serve returns ErrServerClosed on clean shutdown; anything else is
		// already surfaced to clients as failed requests.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

func (s *httpServer) addr() string { return s.ln.Addr().String() }

func (s *httpServer) close() error { return s.srv.Close() }

// streamPoints bounds how much series history each state payload carries:
// enough for a dashboard sparkline, small enough to push every tick.
const streamPoints = 120

// serveSSE pushes the state snapshot as SSE "data:" frames at the sampler's
// interval until the client disconnects.
func serveSSE(w http.ResponseWriter, r *http.Request, t *Telemetry) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	interval := t.Sampler.Interval()
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		payload, err := json.Marshal(t.State(streamPoints))
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", payload); err != nil {
			return
		}
		fl.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}
