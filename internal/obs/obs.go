// Package obs is the engine's observability layer: per-thread event tracing,
// abort attribution, and live metrics.
//
// The paper's contribution is *explaining* HTM behaviour — abort-ratio
// breakdowns by cause (Figure 3), footprint-vs-capacity plots (Figures
// 10/11) — and this package generalises the engine's quiescent-only
// aggregate counters into a per-transaction event stream. The engine
// (internal/htm) records one fixed-size Event at each transaction boundary
// (begin, commit, abort) into a per-thread lock-free ring buffer; sinks in
// this package consume the stream: a JSONL writer, a Chrome/Perfetto
// trace_event exporter, and an in-memory aggregator producing
// abort-attribution reports.
//
// Cost contract: tracing is off by default and costs exactly one nil check
// per transaction boundary when disabled — the per-access hot path
// (txLoad/txStore) is never touched. Observation must not perturb the
// simulation: recording an event advances no virtual clock, so fixed-seed
// results are bit-identical with tracing on and off (pinned by
// internal/tm's golden determinism test).
//
// This package is imported by internal/htm and therefore must not import
// it; abort reasons travel as raw uint8 codes and are named through the
// namer internal/htm registers at init.
package obs

// Kind discriminates transaction-boundary events.
type Kind uint8

const (
	// KindBegin marks a transaction attempt starting.
	KindBegin Kind = iota
	// KindCommit marks a successful commit.
	KindCommit
	// KindAbort marks an abort (reason in Event.Reason).
	KindAbort
	// KindModeSwitch marks an adaptive-runtime steady-mode transition of a
	// transaction site: Aborter carries the from-mode code, Reason the
	// to-mode code (named through the mode namer), Line the site ID.
	KindModeSwitch

	numKinds
)

// String returns the JSONL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBegin:
		return "begin"
	case KindCommit:
		return "commit"
	case KindAbort:
		return "abort"
	case KindModeSwitch:
		return "mode"
	}
	return "unknown"
}

// NoLine is the Event.Line sentinel for events with no associated
// conflict-detection line (begins, commits, non-conflict aborts).
const NoLine = ^uint32(0)

// NoThread is the Event.Aborter sentinel when no other thread caused the
// event.
const NoThread = int16(-1)

// Event is one fixed-size transaction-boundary record. All fields are plain
// values so a ring of Events allocates nothing per record.
type Event struct {
	// Kind is the boundary: begin, commit or abort.
	Kind Kind
	// Thread is the hardware-thread slot the transaction ran on.
	Thread uint8
	// Reason is the engine abort-reason code (htm.Reason); meaningful for
	// KindAbort only.
	Reason uint8
	// Retry is the attempt's retry depth: consecutive aborts on this thread
	// since its last commit (0 = first attempt), saturating at 65535.
	Retry uint16
	// Aborter is the thread slot that doomed this transaction, or NoThread
	// for self-inflicted aborts (capacity, explicit, cache-fetch).
	Aborter int16
	// Line is the conflict-detection line the abort was attributed to, or
	// NoLine when the abort has no line (capacity, explicit, ...).
	Line uint32
	// ReadLines and WriteLines are the transaction footprint in distinct
	// lines at commit/abort time (reads exclude prefetched lines).
	ReadLines  uint32
	WriteLines uint32
	// VClock is the event timestamp: the thread's virtual clock in cost
	// units (zero in real-concurrency engines, which have no virtual time).
	VClock uint64
	// Dur is the virtual time since the matching begin (commit/abort only).
	Dur uint64
}

// reasonNamer maps engine abort-reason codes to names. internal/htm
// registers the real namer from its init, so any program linking the engine
// gets symbolic reasons; the fallback keeps this package self-contained.
var reasonNamer = func(code uint8) string {
	return "reason-" + itoa(int(code))
}

// SetReasonNamer installs the abort-reason naming function. Called from
// internal/htm's init; not safe for use after goroutines start tracing.
func SetReasonNamer(f func(code uint8) string) {
	if f != nil {
		reasonNamer = f
	}
}

// ReasonName returns the symbolic name of an abort-reason code.
func ReasonName(code uint8) string { return reasonNamer(code) }

// modeNamer maps adaptive-runtime execution-mode codes to names.
// internal/adapt registers the real namer from its init (mirroring the
// abort-reason namer: this package must not import the controller).
var modeNamer = func(code uint8) string {
	return "mode-" + itoa(int(code))
}

// SetModeNamer installs the execution-mode naming function. Called from
// internal/adapt's init; not safe for use after goroutines start tracing.
func SetModeNamer(f func(code uint8) string) {
	if f != nil {
		modeNamer = f
	}
}

// ModeName returns the symbolic name of an execution-mode code.
func ModeName(code uint8) string { return modeNamer(code) }

// itoa is a tiny strconv.Itoa for the namer fallback (avoids importing
// strconv into every Event user — the engine — for a cold path).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 && i > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
