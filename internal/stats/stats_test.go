package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{2, 8}); !approx(got, 4, 1e-12) {
		t.Errorf("GeoMean(2,8) = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v", got)
	}
	// A zero entry must not collapse the mean to 0 (clamped).
	if got := GeoMean([]float64{0, 4}); got <= 0 {
		t.Errorf("GeoMean with zero entry = %v, want > 0", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !approx(got, 2.138, 0.001) {
		t.Errorf("StdDev = %v, want ~2.138", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev of singleton = %v", got)
	}
}

func TestCI95FourRuns(t *testing.T) {
	// The paper averages 4 runs: dof=3 => t=3.182.
	xs := []float64{10, 12, 11, 13}
	want := 3.182 * StdDev(xs) / 2 // sqrt(4)=2
	if got := CI95(xs); !approx(got, want, 1e-9) {
		t.Errorf("CI95 = %v, want %v", got, want)
	}
	if got := CI95([]float64{1}); got != 0 {
		t.Errorf("CI95 singleton = %v", got)
	}
}

func TestCI95LargeN(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i % 10)
	}
	got := CI95(xs)
	want := 1.96 * StdDev(xs) / 10
	if !approx(got, want, 1e-9) {
		t.Errorf("CI95 large-n = %v, want normal approx %v", got, want)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 10 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); !approx(got, 5.5, 1e-12) {
		t.Errorf("P50 = %v, want 5.5", got)
	}
	if got := Percentile(xs, 90); !approx(got, 9.1, 1e-12) {
		t.Errorf("P90 = %v, want 9.1", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("P50(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileIntsMatchesFloat(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		ints := make([]int, len(raw))
		floats := make([]float64, len(raw))
		for i, v := range raw {
			ints[i] = int(v)
			floats[i] = float64(v)
		}
		return PercentileInts(ints, 90) == Percentile(floats, 90)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("Min/Max of empty should be 0")
	}
}

func TestGeoMeanBetweenMinAndMax(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
