// Package stats provides the small set of statistics the paper's evaluation
// uses: arithmetic and geometric means, standard deviation, 95% confidence
// intervals (Student's t), and percentiles (for the 90-percentile transaction
// sizes of Figures 10 and 11).
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 for an empty slice.
// Non-positive entries are clamped to a tiny positive value so that a single
// zero speedup does not collapse the mean to zero (matching common benchmark
// reporting practice).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-9
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// tTable95 holds two-sided 95% critical values of Student's t distribution
// for 1..30 degrees of freedom; beyond 30 the normal approximation 1.96 is
// used. This is all the paper needs (4 runs per point => 3 dof => 3.182).
var tTable95 = []float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval of the
// mean of xs (the paper's error bars in Figure 2).
func CI95(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	dof := n - 1
	var t float64
	if dof <= len(tTable95) {
		t = tTable95[dof-1]
	} else {
		t = 1.96
	}
	return t * StdDev(xs) / math.Sqrt(float64(n))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// PercentileInts is Percentile for integer samples (transaction line counts).
func PercentileInts(xs []int, p float64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	return Percentile(fs, p)
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
