package platform

import "testing"

func TestTable1Values(t *testing.T) {
	cases := []struct {
		kind            Kind
		line            int
		loadCap, stoCap int
		combined        bool
		cores, smt      int
		abortKinds      int
		reportsPersist  bool
	}{
		{BlueGeneQ, 128, 20 << 20 / 16, 20 << 20 / 16, true, 16, 4, 0, false},
		{ZEC12, 256, 1 << 20, 8 << 10, false, 16, 1, 14, true},
		{IntelCore, 64, 4 << 20, 22 << 10, false, 4, 2, 6, true},
		{POWER8, 128, 8 << 10, 8 << 10, true, 6, 8, 11, true},
	}
	for _, c := range cases {
		s := New(c.kind)
		if s.LineSize != c.line {
			t.Errorf("%v line = %d, want %d", c.kind, s.LineSize, c.line)
		}
		if s.LoadCapacity != c.loadCap || s.StoreCapacity != c.stoCap {
			t.Errorf("%v capacities = %d/%d, want %d/%d", c.kind,
				s.LoadCapacity, s.StoreCapacity, c.loadCap, c.stoCap)
		}
		if s.CombinedCapacity != c.combined {
			t.Errorf("%v combined = %v", c.kind, s.CombinedCapacity)
		}
		if s.Cores != c.cores || s.SMT != c.smt {
			t.Errorf("%v topology = %d/%d, want %d/%d", c.kind, s.Cores, s.SMT, c.cores, c.smt)
		}
		if s.AbortReasonKinds != c.abortKinds {
			t.Errorf("%v abort kinds = %d, want %d", c.kind, s.AbortReasonKinds, c.abortKinds)
		}
		if s.ReportsPersistence != c.reportsPersist {
			t.Errorf("%v persistence reporting = %v", c.kind, s.ReportsPersistence)
		}
	}
}

func TestCapacityLines(t *testing.T) {
	p8 := New(POWER8)
	if p8.LoadCapacityLines() != 64 {
		t.Errorf("POWER8 TMCAM = %d lines, want 64", p8.LoadCapacityLines())
	}
	z := New(ZEC12)
	if z.StoreCapacityLines() != 32 {
		t.Errorf("zEC12 store cache = %d lines, want 32", z.StoreCapacityLines())
	}
	ic := New(IntelCore)
	if ic.StoreCapacityLines() != 352 {
		t.Errorf("Intel store capacity = %d lines, want 352", ic.StoreCapacityLines())
	}
}

func TestCoreOfScatters(t *testing.T) {
	s := New(IntelCore) // 4 cores, SMT2
	for tid := 0; tid < 4; tid++ {
		if s.CoreOf(tid) != tid {
			t.Errorf("thread %d on core %d: first %d threads must get dedicated cores",
				tid, s.CoreOf(tid), s.Cores)
		}
	}
	if s.CoreOf(4) != 0 || s.CoreOf(7) != 3 {
		t.Error("SMT threads must wrap around cores")
	}
	if s.MaxThreads() != 8 {
		t.Errorf("Intel MaxThreads = %d, want 8", s.MaxThreads())
	}
}

func TestFeatureFlags(t *testing.T) {
	if !New(ZEC12).HasConstrainedTx {
		t.Error("zEC12 must have constrained transactions")
	}
	if !New(IntelCore).HasHLE {
		t.Error("Intel must have HLE")
	}
	p8 := New(POWER8)
	if !p8.HasSuspendResume || !p8.HasRollbackOnly {
		t.Error("POWER8 must have suspend/resume and rollback-only transactions")
	}
	bgq := New(BlueGeneQ)
	if !bgq.SoftwareRetryOnly || bgq.SpecIDs != 128 {
		t.Error("Blue Gene/Q must be system-retry-only with 128 speculation IDs")
	}
	if New(IntelCore).PrefetchProb == 0 {
		t.Error("Intel must model the hardware prefetcher")
	}
	if New(ZEC12).CacheFetchAbortProb == 0 {
		t.Error("zEC12 must model cache-fetch-related aborts")
	}
}

func TestStringsAndShorts(t *testing.T) {
	want := map[Kind][2]string{
		BlueGeneQ: {"Blue Gene/Q", "BG"},
		ZEC12:     {"zEC12", "z12"},
		IntelCore: {"Intel Core", "IC"},
		POWER8:    {"POWER8", "P8"},
	}
	for k, w := range want {
		if k.String() != w[0] || k.Short() != w[1] {
			t.Errorf("%d: %q/%q, want %q/%q", int(k), k.String(), k.Short(), w[0], w[1])
		}
	}
	if ShortRunning.String() != "short-running" || LongRunning.String() != "long-running" {
		t.Error("BGQMode strings wrong")
	}
}

func TestAllAndKindsOrder(t *testing.T) {
	all := All()
	kinds := Kinds()
	if len(all) != 4 || len(kinds) != 4 {
		t.Fatal("expected 4 platforms")
	}
	for i, k := range kinds {
		if all[i].Kind != k {
			t.Errorf("All()[%d] = %v, Kinds()[%d] = %v", i, all[i].Kind, i, k)
		}
	}
	if kinds[0] != BlueGeneQ || kinds[3] != POWER8 {
		t.Error("platforms must be in the paper's order")
	}
}
