// Package platform defines behavioural models of the four HTM-capable
// processors the paper compares: IBM Blue Gene/Q, IBM zEnterprise EC12,
// Intel Core i7-4770 (Haswell), and IBM POWER8.
//
// Each Spec carries the parameters of Table 1 (conflict-detection
// granularity, transactional load/store capacities, cache geometry, SMT
// level, abort-reason vocabulary) plus the implementation quirks Sections 2
// and 5 identify as the causes of each system's distinctive behaviour:
// Blue Gene/Q's speculation-ID pool and software begin/end overhead, zEC12's
// cache-fetch-related transient aborts, Intel's adjacent-line hardware
// prefetch entering the transactional read set, and POWER8's tiny combined
// L2-TMCAM capacity.
package platform

import "fmt"

// Kind identifies one of the four modelled processors.
type Kind int

// The four processors of the study, in the paper's order.
const (
	BlueGeneQ Kind = iota
	ZEC12
	IntelCore
	POWER8
	numKinds
)

// String returns the full platform name used in the paper's figures.
func (k Kind) String() string {
	switch k {
	case BlueGeneQ:
		return "Blue Gene/Q"
	case ZEC12:
		return "zEC12"
	case IntelCore:
		return "Intel Core"
	case POWER8:
		return "POWER8"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Short returns the abbreviation used in Figures 3–5 (BG, z12, IC, P8).
func (k Kind) Short() string {
	switch k {
	case BlueGeneQ:
		return "BG"
	case ZEC12:
		return "z12"
	case IntelCore:
		return "IC"
	case POWER8:
		return "P8"
	}
	return "??"
}

// BGQMode selects Blue Gene/Q's transactional execution mode (Section 2.1).
type BGQMode int

const (
	// ShortRunning buffers transactional data only in the L2, so every
	// transactional load pays an L2 round trip, but transactions start
	// without invalidating the L1.
	ShortRunning BGQMode = iota
	// LongRunning lets the L1 buffer transactional data: loads are cheap,
	// but every transaction begin invalidates the L1 (a large fixed cost)
	// and conflict detection coarsens to the full 128-byte L2 line.
	LongRunning
)

func (m BGQMode) String() string {
	if m == LongRunning {
		return "long-running"
	}
	return "short-running"
}

// CostModel holds the software-visible overheads of transactional execution,
// in abstract work units (one unit is one iteration of a calibrated spin
// loop, roughly a nanosecond-scale ALU op). The engine injects these as busy
// work so that relative single-thread overheads match Section 5.1: Blue
// Gene/Q degraded single-thread kmeans by ~40% (software register
// checkpointing, kernel calls to begin/end, L1 invalidation or bypass) while
// the other three processors stayed within ~10%.
type CostModel struct {
	Begin      int // entering transactional execution
	Commit     int // successful commit
	Abort      int // rollback processing
	TxLoad     int // extra cost per transactional load
	TxStore    int // extra cost per transactional store
	CAS        int // atomic compare-and-swap (serialising instruction)
	SpecIDHold int // Blue Gene/Q: cost of one ID-reclamation pass (held under the pool lock)
}

// Spec is the behavioural model of one processor's HTM implementation.
// Fields marked (T1) come directly from Table 1 of the paper.
type Spec struct {
	Kind Kind
	Name string // full marketing name with core/SMT configuration
	Freq string // clock, for Table 1 rendering only

	// Topology.
	Cores int // physical cores (T1 test machines: 16 / 16 / 4 / 6)
	SMT   int // hardware threads per core (T1: 4 / none=1 / 2 / 8)

	// Conflict detection.
	LineSize int // conflict-detection granularity in bytes (T1)

	// Transaction capacity, in bytes per physical core (T1). When
	// CombinedCapacity is true, loads and stores share one budget
	// (Blue Gene/Q's L2 ways, POWER8's 64-entry TMCAM).
	LoadCapacity     int
	StoreCapacity    int
	CombinedCapacity bool

	// Store-buffer associativity. When StoreSets > 0, buffered store lines
	// are tracked per cache set and overflowing StoreWays lines in one set
	// aborts the transaction even below StoreCapacity (Intel's L1-resident
	// store buffering; Section 2's cache-way-conflict capacity aborts).
	StoreSets int
	StoreWays int

	// Cache geometry, for Table 1 rendering.
	L1Desc string
	L2Desc string

	// AbortReasonKinds is the size of the processor's abort-reason
	// vocabulary (T1: – / 14 / 6 / 11).
	AbortReasonKinds int

	// ReportsPersistence is true when the processor's abort code includes
	// its own persistent/transient decision (zEC12, Intel, POWER8).
	ReportsPersistence bool

	// SpecIDs is Blue Gene/Q's pool of speculation IDs (128); zero
	// elsewhere. Transactions block at begin when the pool is empty and
	// IDs are reclaimed in batched passes (Section 2.1).
	SpecIDs int

	// PrefetchProb is the probability that a transactional access also
	// pulls the adjacent line into the transactional read set, modelling
	// Intel's hardware prefetcher participating in conflict detection
	// (Section 5.1). Zero disables the prefetcher model.
	PrefetchProb float64

	// CacheFetchAbortProb is the per-transactional-access probability of a
	// spurious transient abort, modelling zEC12's undocumented
	// "cache-fetch-related" aborts that dominate its abort mix in
	// Figure 3. Zero elsewhere.
	CacheFetchAbortProb float64

	// Feature flags (Section 6).
	HasConstrainedTx  bool // zEC12 constrained transactions
	HasHLE            bool // Intel hardware lock elision
	HasSuspendResume  bool // POWER8 suspend/resume instructions
	HasRollbackOnly   bool // POWER8 rollback-only transactions
	SoftwareRetryOnly bool // Blue Gene/Q: only the system-provided retry mechanism

	// Costs. For Blue Gene/Q, TxLoad applies in short-running mode
	// (every load reaches the L2) and BeginLong replaces Begin in
	// long-running mode (L1 invalidation at transaction start).
	Costs     CostModel
	BeginLong int
}

// LoadCapacityLines returns the load capacity in conflict-detection lines.
func (s *Spec) LoadCapacityLines() int { return s.LoadCapacity / s.LineSize }

// StoreCapacityLines returns the store capacity in conflict-detection lines.
func (s *Spec) StoreCapacityLines() int { return s.StoreCapacity / s.LineSize }

// MaxThreads returns the total hardware thread count (cores × SMT).
func (s *Spec) MaxThreads() int { return s.Cores * s.SMT }

// CoreOf maps software thread tid (with nThreads total) to a physical core,
// scattering threads across cores first so that runs with up to Cores
// threads get dedicated cores — the paper's fairness condition for the
// 4-thread comparison (Section 5).
func (s *Spec) CoreOf(tid int) int { return tid % s.Cores }

// New returns the model of the requested processor, configured exactly as
// the paper's test machines (Section 5 hardware list and Table 1).
func New(k Kind) *Spec {
	switch k {
	case BlueGeneQ:
		return &Spec{
			Kind:  BlueGeneQ,
			Name:  "Blue Gene/Q (16-core A2, SMT4)",
			Freq:  "1.6 GHz",
			Cores: 16, SMT: 4,
			LineSize:          128,           // L2 line; worst-case granularity
			LoadCapacity:      20 << 20 / 16, // 1.25 MB per core of the 20 MB L2 budget
			StoreCapacity:     20 << 20 / 16,
			CombinedCapacity:  true,
			L1Desc:            "16 KB, 8-way",
			L2Desc:            "32 MB, 16-way (shared by 16 cores)",
			AbortReasonKinds:  0, // not exposed to software
			SpecIDs:           128,
			SoftwareRetryOnly: true,
			// High software overhead: register checkpointing, kernel
			// calls at begin/end, and L2-only loads in short mode.
			Costs: CostModel{
				Begin: 110, Commit: 90, Abort: 180, CAS: 30,
				TxLoad: 6, TxStore: 2, SpecIDHold: 3000,
			},
			BeginLong: 700, // L1 invalidation at transaction start
		}
	case ZEC12:
		return &Spec{
			Kind:  ZEC12,
			Name:  "zEC12 (16-core)",
			Freq:  "5.5 GHz",
			Cores: 16, SMT: 1,
			LineSize:            256,
			LoadCapacity:        1 << 20, // L1 + LRU-extension vector
			StoreCapacity:       8 << 10, // 8 KB gathering store cache
			L1Desc:              "96 KB, 6-way",
			L2Desc:              "1 MB, 8-way",
			AbortReasonKinds:    14,
			ReportsPersistence:  true,
			CacheFetchAbortProb: 0.0010,
			HasConstrainedTx:    true,
			Costs: CostModel{
				Begin: 12, Commit: 10, Abort: 90, CAS: 28,
				TxLoad: 0, TxStore: 0,
			},
		}
	case IntelCore:
		return &Spec{
			Kind:  IntelCore,
			Name:  "Intel Core i7-4770 (4-core, SMT2)",
			Freq:  "3.4 GHz",
			Cores: 4, SMT: 2,
			LineSize:           64,
			LoadCapacity:       4 << 20,  // measured in Section 2.3
			StoreCapacity:      22 << 10, // measured in Section 2.3
			StoreSets:          64,       // 32 KB / 64 B / 8 ways
			StoreWays:          8,
			L1Desc:             "32 KB, 8-way",
			L2Desc:             "256 KB",
			AbortReasonKinds:   6,
			ReportsPersistence: true,
			PrefetchProb:       0.5,
			HasHLE:             true,
			Costs: CostModel{
				Begin: 10, Commit: 8, Abort: 70, CAS: 24,
				TxLoad: 0, TxStore: 0,
			},
		}
	case POWER8:
		return &Spec{
			Kind:  POWER8,
			Name:  "POWER8 (6-core, SMT8, pre-release)",
			Freq:  "4.1 GHz",
			Cores: 6, SMT: 8,
			LineSize:           128,
			LoadCapacity:       8 << 10, // 64-entry L2 TMCAM × 128 B
			StoreCapacity:      8 << 10,
			CombinedCapacity:   true,
			L1Desc:             "64 KB",
			L2Desc:             "512 KB, 8-way",
			AbortReasonKinds:   11,
			ReportsPersistence: true,
			HasSuspendResume:   true,
			HasRollbackOnly:    true,
			Costs: CostModel{
				Begin: 14, Commit: 12, Abort: 90, CAS: 28,
				TxLoad: 0, TxStore: 0,
			},
		}
	}
	panic(fmt.Sprintf("platform: unknown kind %d", int(k)))
}

// All returns fresh models of all four platforms in the paper's order.
func All() []*Spec {
	return []*Spec{New(BlueGeneQ), New(ZEC12), New(IntelCore), New(POWER8)}
}

// Kinds returns the four platform kinds in the paper's order.
func Kinds() []Kind { return []Kind{BlueGeneQ, ZEC12, IntelCore, POWER8} }
