package adapt

import (
	"fmt"
	"testing"
)

// fixedIntn is a deterministic stand-in for the per-thread PRNG.
func fixedIntn(v int) func(int) int {
	return func(n int) int {
		if v >= n {
			return n - 1
		}
		return v
	}
}

// step drives one whole execution of a site to a fixed outcome and returns
// any steady-mode transition it produced.
func commitOnce(s *Site) Transition {
	tx := s.Begin()
	return tx.Commit()
}

// TestSiteTransitions is the table-driven transition matrix the controller
// satellite requires: each case drives a fresh site through a scripted
// outcome sequence and asserts the resulting steady mode and probe state.
func TestSiteTransitions(t *testing.T) {
	cfg := Config{
		Window: 16, CapacityDemote: 3, LockDemote: 4, STMDemote: 4,
		HTMRetry: 4, CapacityRetry: 1, ProbeRetry: 2,
		BackoffBase: 16, BackoffMaxShift: 3,
		Probation: 4, ProbationGrowth: 2, ProbationMax: 64, ProbeWins: 2,
	}
	cases := []struct {
		name  string
		drive func(t *testing.T, s *Site)
		want  Mode
	}{
		{
			// Repeated capacity aborts in the window demote the site to STM:
			// the footprint will not shrink on retry.
			name: "capacity demotes to STM",
			drive: func(t *testing.T, s *Site) {
				var tr Transition
				for i := 0; i < cfg.CapacityDemote; i++ {
					tx := s.Begin()
					if got := tx.Mode(); got != ModeHTM {
						t.Fatalf("attempt %d started in %v, want htm", i, got)
					}
					tr = tx.Abort(ClassCapacity)
					if i < cfg.CapacityDemote-1 {
						if tr.Changed {
							t.Fatalf("demoted after only %d capacity aborts", i+1)
						}
						// Execution-local fallback: the second capacity abort
						// of one execution moves just this execution to STM.
						tx.Abort(ClassCapacity)
						if tx.Mode() != ModeSTM {
							t.Fatalf("execution not locally demoted to STM after exhausting CapacityRetry")
						}
						return // single-execution sub-behaviour verified
					}
				}
				if !tr.Changed || tr.From != ModeHTM || tr.To != ModeSTM {
					t.Fatalf("want HTM->STM transition, got %+v", tr)
				}
			},
			want: ModeHTM, // the early return above leaves the site steady
		},
		{
			name: "window capacity aborts demote site to STM",
			drive: func(t *testing.T, s *Site) {
				for i := 0; i < cfg.CapacityDemote; i++ {
					tx := s.Begin()
					if tr := tx.Abort(ClassCapacity); tr.Changed {
						if i != cfg.CapacityDemote-1 {
							t.Fatalf("demoted early at abort %d", i+1)
						}
						if tr.From != ModeHTM || tr.To != ModeSTM {
							t.Fatalf("want HTM->STM, got %+v", tr)
						}
						return
					}
				}
				t.Fatal("no demotion after CapacityDemote capacity aborts")
			},
			want: ModeSTM,
		},
		{
			// Capacity aborts with a conflict-heavy window skip STM and go
			// straight to the lock.
			name: "capacity with conflict-heavy window demotes to lock",
			drive: func(t *testing.T, s *Site) {
				for i := 0; i < cfg.LockDemote; i++ {
					tx := s.Begin()
					tx.Abort(ClassConflict)
					tx.Commit()
				}
				for i := 0; i < cfg.CapacityDemote; i++ {
					tx := s.Begin()
					if tr := tx.Abort(ClassCapacity); tr.Changed {
						if tr.To != ModeLock {
							t.Fatalf("want demotion to lock, got %+v", tr)
						}
						return
					}
				}
				t.Fatal("no demotion")
			},
			want: ModeLock,
		},
		{
			// Enough one-shot lock fallbacks demote the site: it is
			// serialising anyway.
			name: "repeated lock fallback commits demote to lock",
			drive: func(t *testing.T, s *Site) {
				for i := 0; i < cfg.LockDemote; i++ {
					tx := s.Begin()
					for tx.Mode() == ModeHTM {
						tx.Abort(ClassConflict)
					}
					if tx.Mode() != ModeLock {
						t.Fatalf("exhausted HTM retries should fall back to lock, got %v", tx.Mode())
					}
					if tr := tx.Commit(); tr.Changed {
						if tr.To != ModeLock || i != cfg.LockDemote-1 {
							t.Fatalf("unexpected transition %+v at fallback %d", tr, i+1)
						}
						return
					}
				}
				t.Fatal("no demotion after LockDemote fallback commits")
			},
			want: ModeLock,
		},
		{
			// STM validation conflicts piling up demote an STM site to lock.
			name: "stm conflicts demote to lock",
			drive: func(t *testing.T, s *Site) {
				// First demote to STM via capacity.
				for s.Mode() == ModeHTM {
					tx := s.Begin()
					tx.Abort(ClassCapacity)
				}
				for i := 0; i < cfg.STMDemote; i++ {
					tx := s.Begin()
					if got := tx.Mode(); got != ModeSTM {
						t.Fatalf("want STM attempts, got %v", got)
					}
					if tr := tx.Abort(ClassSTMConflict); tr.Changed {
						if tr.From != ModeSTM || tr.To != ModeLock {
							t.Fatalf("want STM->lock, got %+v", tr)
						}
						return
					}
				}
				t.Fatal("no demotion after STMDemote validation conflicts")
			},
			want: ModeLock,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ctl := NewController(cfg)
			s := ctl.SiteFor(1)
			tc.drive(t, s)
			if got := s.Mode(); got != tc.want {
				t.Fatalf("steady mode = %v, want %v", got, tc.want)
			}
		})
	}
}

// TestConflictBackoff pins the exponential-backoff-with-jitter contract:
// conflict aborts double the envelope up to the cap, the jittered pause
// stays in [envelope/2, envelope), and non-conflict aborts reset it.
func TestConflictBackoff(t *testing.T) {
	cfg := Config{BackoffBase: 16, BackoffMaxShift: 3, HTMRetry: 100}
	ctl := NewController(cfg)
	tx := ctl.SiteFor(1).Begin()

	if got := tx.Backoff(fixedIntn(0)); got != 0 {
		t.Fatalf("backoff before any abort = %d, want 0", got)
	}
	wantEnvelope := []int{16, 32, 64, 128, 128, 128} // doubles, then caps at base<<3
	for i, env := range wantEnvelope {
		tx.Abort(ClassConflict)
		lo := tx.Backoff(fixedIntn(0))
		hi := tx.Backoff(fixedIntn(1 << 30))
		if lo != env/2 {
			t.Fatalf("abort %d: min backoff = %d, want %d", i+1, lo, env/2)
		}
		if hi != env/2+(env+1)/2-1 {
			t.Fatalf("abort %d: max backoff = %d, want %d", i+1, hi, env-1)
		}
	}
	// A lock-conflict abort clears the pending backoff (WaitUntilFree is the
	// right wait, not a timed pause).
	tx.Abort(ClassLockConflict)
	if got := tx.Backoff(fixedIntn(0)); got != 0 {
		t.Fatalf("backoff after lock abort = %d, want 0", got)
	}
}

// TestProbationReentry walks a demoted site through the full probation
// cycle: commits in the demoted mode accumulate, a probe starts only after
// the probation elapses, and ProbeWins consecutive probe commits promote
// the site back to HTM.
func TestProbationReentry(t *testing.T) {
	cfg := Config{
		Window: 16, CapacityDemote: 2, Probation: 3, ProbationGrowth: 2,
		ProbationMax: 24, ProbeWins: 2, ProbeRetry: 2,
	}
	ctl := NewController(cfg)
	s := ctl.SiteFor(1)

	// Demote to STM.
	for s.Mode() == ModeHTM {
		tx := s.Begin()
		tx.Abort(ClassCapacity)
	}
	if s.Mode() != ModeSTM {
		t.Fatalf("setup: mode = %v, want stm", s.Mode())
	}

	// During probation every execution stays in STM.
	for i := 0; i < cfg.Probation; i++ {
		tx := s.Begin()
		if tx.Probing() || tx.Mode() != ModeSTM {
			t.Fatalf("execution %d during probation: mode=%v probing=%v", i, tx.Mode(), tx.Probing())
		}
		tx.Commit()
	}

	// Probation has elapsed: the next executions probe HTM; ProbeWins
	// consecutive commits promote.
	for i := 0; i < cfg.ProbeWins; i++ {
		tx := s.Begin()
		if !tx.Probing() || tx.Mode() != ModeHTM {
			t.Fatalf("probe %d: mode=%v probing=%v, want probing htm", i, tx.Mode(), tx.Probing())
		}
		tr := tx.Commit()
		if i < cfg.ProbeWins-1 {
			if tr.Changed {
				t.Fatalf("promoted after only %d probe wins", i+1)
			}
		} else if !tr.Changed || tr.From != ModeSTM || tr.To != ModeHTM {
			t.Fatalf("want STM->HTM promotion, got %+v", tr)
		}
	}
	if s.Mode() != ModeHTM {
		t.Fatalf("mode after promotion = %v, want htm", s.Mode())
	}
}

// TestProbeHysteresis pins the anti-flapping behaviour: a failed probe
// returns the site to its demoted mode and grows the probation window
// geometrically up to the cap, so a site that keeps failing probes probes
// geometrically less often.
func TestProbeHysteresis(t *testing.T) {
	cfg := Config{
		Window: 16, CapacityDemote: 2, Probation: 2, ProbationGrowth: 2,
		ProbationMax: 8, ProbeWins: 2, ProbeRetry: 2,
	}
	ctl := NewController(cfg)
	s := ctl.SiteFor(1)
	for s.Mode() == ModeHTM {
		tx := s.Begin()
		tx.Abort(ClassCapacity)
	}

	// Each round: serve the probation commits, then fail the probe with a
	// capacity abort (immediate probe failure). The probation must double:
	// 2, 4, 8, then stay capped at 8.
	served := 0 // STM commits already credited to the current probation
	for round, wantProbation := range []int{2, 4, 8, 8} {
		n := served
		var tx Txn
		for {
			tx = s.Begin()
			if tx.Probing() {
				break
			}
			tx.Commit()
			n++
			if n > wantProbation {
				t.Fatalf("round %d: no probe after %d probation commits, want %d", round, n, wantProbation)
			}
		}
		if n != wantProbation {
			t.Fatalf("round %d: probe started after %d probation commits, want %d", round, n, wantProbation)
		}
		if tr := tx.Abort(ClassCapacity); tr.Changed {
			t.Fatalf("round %d: probe failure must not transition, got %+v", round, tr)
		}
		if tx.Probing() || tx.Mode() != ModeSTM {
			t.Fatalf("round %d: failed probe should return execution to STM, got mode=%v probing=%v",
				round, tx.Mode(), tx.Probing())
		}
		tx.Commit()
		served = 1 // the post-failure commit counts toward the next window
	}
}

// TestProbeConflictRetries verifies a probe survives transient conflicts up
// to ProbeRetry before failing — conflicts during a probe do not prove the
// demotion cause persists.
func TestProbeConflictRetries(t *testing.T) {
	cfg := Config{
		Window: 16, CapacityDemote: 2, Probation: 1, ProbeWins: 1, ProbeRetry: 3,
	}
	ctl := NewController(cfg)
	s := ctl.SiteFor(1)
	for s.Mode() == ModeHTM {
		tx := s.Begin()
		tx.Abort(ClassCapacity)
	}
	commitOnce(s) // serve probation

	tx := s.Begin()
	if !tx.Probing() {
		t.Fatal("want probe")
	}
	tx.Abort(ClassConflict)
	if !tx.Probing() || tx.Mode() != ModeHTM {
		t.Fatalf("probe gave up on first conflict: mode=%v probing=%v", tx.Mode(), tx.Probing())
	}
	if tx.Backoff(fixedIntn(0)) == 0 {
		t.Fatal("probe conflict should set a backoff")
	}
	if tr := tx.Commit(); !tr.Changed || tr.To != ModeHTM {
		t.Fatalf("probe commit with ProbeWins=1 should promote, got %+v", tr)
	}
}

// TestLockSiteProbesSTMWhenCapacityBound: a lock-mode site whose window is
// dominated by capacity aborts probes STM, not HTM — hardware would just
// overflow again.
func TestLockSiteProbesSTMWhenCapacityBound(t *testing.T) {
	cfg := Config{
		Window: 16, CapacityDemote: 3, LockDemote: 2, STMDemote: 16,
		Probation: 1, ProbeWins: 1, HTMRetry: 8,
	}
	ctl := NewController(cfg)
	s := ctl.SiteFor(1)
	// Two conflict aborts in the window so the capacity demotion below picks
	// the lock, then three capacity aborts (dominating the abort record).
	for i := 0; i < cfg.LockDemote; i++ {
		tx := s.Begin()
		tx.Abort(ClassConflict)
		tx.Commit()
	}
	for s.Mode() == ModeHTM {
		tx := s.Begin()
		tx.Abort(ClassCapacity)
	}
	if s.Mode() != ModeLock {
		t.Fatalf("setup: mode = %v, want lock", s.Mode())
	}
	commitOnce(s) // serve probation
	tx := s.Begin()
	if !tx.Probing() || tx.Mode() != ModeSTM {
		t.Fatalf("capacity-bound lock site should probe STM, got mode=%v probing=%v",
			tx.Mode(), tx.Probing())
	}
}

// TestPromotionResetsHistory: after a promotion the window is cleared, so
// the pre-demotion abort record cannot instantly re-demote the site.
func TestPromotionResetsHistory(t *testing.T) {
	cfg := Config{Window: 16, CapacityDemote: 2, Probation: 1, ProbeWins: 1}
	ctl := NewController(cfg)
	s := ctl.SiteFor(1)
	for s.Mode() == ModeHTM {
		tx := s.Begin()
		tx.Abort(ClassCapacity)
	}
	commitOnce(s) // probation
	probe := s.Begin()
	probe.Commit() // winning probe → promotion
	if s.Mode() != ModeHTM {
		t.Fatalf("mode = %v, want htm after promotion", s.Mode())
	}
	// One capacity abort must NOT re-demote (window was reset; threshold 2).
	tx := s.Begin()
	if tr := tx.Abort(ClassCapacity); tr.Changed {
		t.Fatalf("stale history re-demoted the site: %+v", tr)
	}
	if s.Mode() != ModeHTM {
		t.Fatalf("mode = %v, want htm", s.Mode())
	}
}

// TestControllerBookkeeping covers site identity, switch counting and
// snapshots — the bits the harness report consumes.
func TestControllerBookkeeping(t *testing.T) {
	ctl := NewController(Config{Window: 8, CapacityDemote: 2})
	a, b := ctl.SiteFor(100), ctl.SiteFor(200)
	if a == b || a.ID() == b.ID() {
		t.Fatal("distinct keys must get distinct sites")
	}
	if ctl.SiteFor(100) != a {
		t.Fatal("same key must return the same site")
	}
	for a.Mode() == ModeHTM {
		tx := a.Begin()
		tx.Abort(ClassCapacity)
	}
	if got := ctl.Switches(); got != 1 {
		t.Fatalf("Switches() = %d, want 1", got)
	}
	snaps := ctl.Sites()
	if len(snaps) != 2 {
		t.Fatalf("Sites() returned %d snapshots, want 2", len(snaps))
	}
	if snaps[0].ID != a.ID() || snaps[0].Mode != ModeSTM || snaps[0].Transitions != 1 {
		t.Fatalf("snapshot 0 = %+v", snaps[0])
	}
	if snaps[0].Aborts == 0 {
		t.Fatal("snapshot should count aborts")
	}
}

// TestModeAndClassNames keeps the event vocabulary stable (events carry raw
// codes; names are the contract with trace tooling).
func TestModeAndClassNames(t *testing.T) {
	for _, tc := range []struct {
		m    Mode
		want string
	}{{ModeHTM, "htm"}, {ModeSTM, "stm"}, {ModeLock, "lock"}} {
		if got := tc.m.String(); got != tc.want {
			t.Errorf("Mode(%d).String() = %q, want %q", tc.m, got, tc.want)
		}
	}
	if got := Mode(9).String(); got != "mode(9)" {
		t.Errorf("out-of-range mode name = %q", got)
	}
	for _, tc := range []struct {
		c    Class
		want string
	}{
		{ClassConflict, "conflict"}, {ClassCapacity, "capacity"},
		{ClassLockConflict, "lock"}, {ClassOther, "other"}, {ClassSTMConflict, "stm-conflict"},
	} {
		if got := tc.c.String(); got != tc.want {
			t.Errorf("Class(%d).String() = %q, want %q", tc.c, got, tc.want)
		}
	}
	if got := Class(9).String(); got != "class(9)" {
		t.Errorf("out-of-range class name = %q", got)
	}
}

// TestDefaultsAreSane pins the documented defaults.
func TestDefaultsAreSane(t *testing.T) {
	d := DefaultConfig()
	checks := []struct {
		name string
		got  int
		want int
	}{
		{"Window", d.Window, 64},
		{"CapacityDemote", d.CapacityDemote, 4},
		{"LockDemote", d.LockDemote, 16},
		{"STMDemote", d.STMDemote, 32},
		{"HTMRetry", d.HTMRetry, 8},
		{"ProbeWins", d.ProbeWins, 4},
		{"Probation", d.Probation, 64},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("default %s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

func ExampleSite_Begin() {
	ctl := NewController(Config{CapacityDemote: 2})
	site := ctl.SiteFor(1)
	for i := 0; i < 2; i++ {
		tx := site.Begin()
		tx.Abort(ClassCapacity)
	}
	fmt.Println(site.Mode())
	// Output: stm
}
