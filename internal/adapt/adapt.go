// Package adapt is the online policy controller of the hybrid-TM runtime:
// per transaction site, it selects the execution mode (best-effort hardware
// TM, NOrec software TM, or the irrevocable global lock) and the retry and
// backoff budgets, from a sliding window of recent abort reasons.
//
// The paper tunes retry parameters offline "for each test case" (Section
// 5.1) and finds that the winning mechanism differs per platform and per
// workload; related work (capacity-stretching fallbacks on POWER, hybrid
// NOrec) argues the decision belongs at runtime. This controller makes that
// decision per transaction site:
//
//   - Capacity and way aborts are self-inflicted and mostly persistent, so
//     retrying them burns cycles: a site whose window shows repeated
//     capacity aborts demotes to STM (no capacity limits) — or straight to
//     the lock when conflicts dominate its window as well.
//   - Conflict aborts are transient: they retry in HTM under exponential
//     backoff with jitter, falling back to the lock only for the one
//     offending execution (not the whole site).
//   - Demoted sites re-enter HTM through a probation window: only after
//     `Probation` commits in the demoted mode does the site probe HTM
//     again, and only `ProbeWins` consecutive probe commits promote it
//     back (hysteresis). A failed probe multiplies the probation length,
//     so a site that keeps failing probes stops flapping — the lemming
//     effect the paper's Figure 1 line 9 guards against, applied to mode
//     switching.
//
// The controller is a pure state machine: decisions depend only on the
// per-site windowed history, never on wall-clock time or global shared
// randomness, so virtual-time runs with the controller attached remain
// deterministic. Jitter is delegated to the caller's (deterministic,
// per-thread) PRNG through Txn.Backoff.
//
// This package deliberately knows nothing about the engine: internal/tm
// maps htm abort reasons onto the Class vocabulary and applies the
// decisions; mode-transition events flow through internal/obs.
package adapt

import (
	"fmt"
	"sync"
	"sync/atomic"

	"htmcmp/internal/chaos"
	"htmcmp/internal/obs"
)

// Mode is an execution mode the controller can select for a site.
type Mode uint8

const (
	// ModeHTM runs the site's critical sections as best-effort hardware
	// transactions with the global-lock fallback (the paper's Figure 1).
	ModeHTM Mode = iota
	// ModeSTM runs them as NOrec software transactions.
	ModeSTM
	// ModeLock runs them irrevocably under the global lock.
	ModeLock

	numModes
)

// NumModes is the size of the Mode vocabulary (for stats arrays).
const NumModes = int(numModes)

// String returns the short identifier used in events and tables.
func (m Mode) String() string {
	switch m {
	case ModeHTM:
		return "htm"
	case ModeSTM:
		return "stm"
	case ModeLock:
		return "lock"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// obs carries mode-transition events with raw uint8 mode codes (it cannot
// import this package); registering the namer here gives every program
// linking the controller symbolic mode names in event sinks.
func init() {
	obs.SetModeNamer(func(code uint8) string { return Mode(code).String() })
}

// Class is the controller's abort vocabulary: the Figure 3 categories plus
// the STM validation conflict. internal/tm maps htm.Abort onto it.
type Class uint8

const (
	// ClassConflict is a hardware data conflict (including non-transactional
	// and committer conflicts).
	ClassConflict Class = iota
	// ClassCapacity is any flavour of capacity overflow (load, store, way,
	// SMT sharing).
	ClassCapacity
	// ClassLockConflict is an abort caused by the global lock word.
	ClassLockConflict
	// ClassOther is everything else (cache-fetch, explicit, unknown).
	ClassOther
	// ClassSTMConflict is a NOrec value-validation failure.
	ClassSTMConflict

	numClasses
)

// String returns a short identifier for the class.
func (c Class) String() string {
	switch c {
	case ClassConflict:
		return "conflict"
	case ClassCapacity:
		return "capacity"
	case ClassLockConflict:
		return "lock"
	case ClassOther:
		return "other"
	case ClassSTMConflict:
		return "stm-conflict"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// window entries: per-execution outcomes. Commits record the mode they
// landed in; aborts record their class. The demotion rules below are counts
// over this ring.
type entry uint8

const (
	entryCommitHTM entry = iota
	entryCommitSTM
	entryCommitLock // one-shot fallback to the lock after exhausted retries
	entryAbortConflict
	entryAbortCapacity
	entryAbortLock
	entryAbortOther
	entryAbortSTM

	numEntries
)

// Config holds the controller's thresholds. The zero value selects the
// defaults; all counts are per transaction site.
type Config struct {
	// Window is the per-site history length in recorded outcomes
	// (default 64).
	Window int
	// CapacityDemote demotes an HTM site to STM once this many capacity
	// aborts sit in its window (default 4). Capacity aborts are mostly
	// persistent: the footprint will not shrink on retry.
	CapacityDemote int
	// LockDemote demotes an HTM site to the lock once this many of its
	// windowed executions ended in the one-shot lock fallback
	// (default Window/4): the site is effectively serialising anyway, so
	// stop paying for the failed speculation first.
	LockDemote int
	// STMDemote demotes an STM site to the lock once this many NOrec
	// validation conflicts sit in its window (default Window/2): value
	// validation that keeps failing means the site is serialisation-bound.
	STMDemote int
	// HTMRetry bounds hardware attempts per execution before the one-shot
	// lock fallback (default 8, the paper's untuned transient budget).
	HTMRetry int
	// CapacityRetry bounds hardware attempts after a capacity abort within
	// one execution (default 1, mirroring the paper's finding that a small
	// persistent budget wins).
	CapacityRetry int
	// ProbeRetry bounds hardware attempts of a probe execution (default 2);
	// a probe that cannot commit within it fails the probe.
	ProbeRetry int
	// BackoffBase is the first conflict backoff in cost cycles (default 16).
	BackoffBase int
	// BackoffMaxShift caps the exponential backoff doubling (default 6:
	// at most BackoffBase<<6 cycles).
	BackoffMaxShift int
	// Probation is how many commits a demoted site must complete in its
	// demoted mode before probing HTM again (default 64).
	Probation int
	// ProbationGrowth multiplies the probation length on a failed probe
	// (default 2), ProbationMax caps it (default 4096).
	ProbationGrowth int
	ProbationMax    int
	// ProbeWins is how many consecutive probe commits promote the site
	// back (default 4) — the hysteresis that prevents flapping.
	ProbeWins int
	// Faults, when set, injects controller mode thrash (internal/chaos):
	// on a committing execution the site's deterministic per-site stream
	// may force a spurious steady-mode rotation, modelling a flapping or
	// mis-tuned controller. Nil costs one pointer check per commit; the
	// forced transitions flow through the ordinary transition path, so
	// every mode the site lands in remains correct — thrash costs
	// performance, never consistency.
	Faults *chaos.Injector
}

// DefaultConfig returns the default thresholds.
func DefaultConfig() Config { return Config{}.withDefaults() }

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.Window > 1024 {
		c.Window = 1024
	}
	if c.CapacityDemote <= 0 {
		c.CapacityDemote = 4
	}
	if c.LockDemote <= 0 {
		c.LockDemote = c.Window / 4
	}
	if c.STMDemote <= 0 {
		c.STMDemote = c.Window / 2
	}
	if c.HTMRetry <= 0 {
		c.HTMRetry = 8
	}
	if c.CapacityRetry <= 0 {
		c.CapacityRetry = 1
	}
	if c.ProbeRetry <= 0 {
		c.ProbeRetry = 2
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 16
	}
	if c.BackoffMaxShift <= 0 {
		c.BackoffMaxShift = 6
	}
	if c.Probation <= 0 {
		c.Probation = 64
	}
	if c.ProbationGrowth <= 1 {
		c.ProbationGrowth = 2
	}
	if c.ProbationMax <= 0 {
		c.ProbationMax = 4096
	}
	if c.ProbeWins <= 0 {
		c.ProbeWins = 4
	}
	return c
}

// Transition reports a steady-mode change of one site. The zero value means
// "no transition" (None is false).
type Transition struct {
	Site     uint32
	From, To Mode
	Changed  bool
}

// Controller owns the per-site state. One controller serves all executors of
// a run; it is safe for concurrent use (per-site locking — under the
// virtual-time scheduler only one thread runs at a time, so decisions are
// deterministic for a fixed seed).
type Controller struct {
	cfg Config

	mu    sync.RWMutex
	sites map[uintptr]*Site
	order []*Site

	switches atomic.Uint64
}

// NewController builds a controller with cfg (zero Config = defaults).
func NewController(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults(), sites: map[uintptr]*Site{}}
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

// Switches returns the total number of steady-mode transitions across all
// sites.
func (c *Controller) Switches() uint64 { return c.switches.Load() }

// SiteFor returns the site state for a transaction-site key, creating it in
// ModeHTM on first use. Keys are opaque; internal/tm uses the body's code
// pointer, which identifies the static call site.
func (c *Controller) SiteFor(key uintptr) *Site {
	c.mu.RLock()
	s := c.sites[key]
	c.mu.RUnlock()
	if s != nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s = c.sites[key]; s != nil {
		return s
	}
	s = &Site{ctl: c, id: uint32(len(c.order)), win: make([]entry, c.cfg.Window)}
	if c.cfg.Faults != nil {
		s.faults = c.cfg.Faults.Stream(int(s.id))
	}
	c.sites[key] = s
	c.order = append(c.order, s)
	return s
}

// SiteSnapshot is one site's state for reporting.
type SiteSnapshot struct {
	ID          uint32
	Mode        Mode
	Probing     bool
	Transitions uint64
	Commits     [NumModes]uint64
	Aborts      uint64
}

// Sites returns a snapshot of every site in creation order.
func (c *Controller) Sites() []SiteSnapshot {
	c.mu.RLock()
	order := append([]*Site(nil), c.order...)
	c.mu.RUnlock()
	out := make([]SiteSnapshot, 0, len(order))
	for _, s := range order {
		s.mu.Lock()
		out = append(out, SiteSnapshot{
			ID: s.id, Mode: s.mode, Probing: s.probing,
			Transitions: s.transitions, Commits: s.commits, Aborts: s.aborts,
		})
		s.mu.Unlock()
	}
	return out
}

// Site is the controller state of one transaction site.
type Site struct {
	ctl *Controller
	id  uint32
	// faults is the site's chaos roll stream (nil = injection off);
	// deterministic per site id, so virtual-time runs with thrash
	// injection stay reproducible.
	faults *chaos.Stream

	mu   sync.Mutex
	mode Mode // steady mode

	// window ring of recent outcomes with per-entry counts.
	win    []entry
	winLen int
	winPos int
	counts [numEntries]int

	// probation / probe state (meaningful while mode != ModeHTM).
	commitsSinceDemote int
	probation          int // commits required before the next probe; 0 = base
	probing            bool
	probeTarget        Mode
	probeWins          int

	transitions uint64
	commits     [NumModes]uint64
	aborts      uint64
}

// ID returns the site's dense identifier (assigned in first-use order).
func (s *Site) ID() uint32 { return s.id }

// Mode returns the site's current steady mode.
func (s *Site) Mode() Mode {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode
}

func (s *Site) record(e entry) {
	if s.winLen == len(s.win) {
		s.counts[s.win[s.winPos]]--
	} else {
		s.winLen++
	}
	s.win[s.winPos] = e
	s.counts[e]++
	s.winPos++
	if s.winPos == len(s.win) {
		s.winPos = 0
	}
}

// resetWindow clears the history — used after a promotion so the demoted
// mode's record does not immediately re-demote the site.
func (s *Site) resetWindow() {
	s.winLen, s.winPos = 0, 0
	for i := range s.counts {
		s.counts[i] = 0
	}
}

// transitionLocked switches the steady mode; callers hold s.mu.
func (s *Site) transitionLocked(to Mode) Transition {
	from := s.mode
	if from == to {
		return Transition{}
	}
	s.mode = to
	s.transitions++
	s.ctl.switches.Add(1)
	if to == ModeHTM {
		// Promotion: fresh history and base probation for the next demotion.
		s.resetWindow()
		s.probation = 0
	} else {
		s.commitsSinceDemote = 0
	}
	s.probing = false
	s.probeWins = 0
	return Transition{Site: s.id, From: from, To: to, Changed: true}
}

// Begin starts one critical-section execution: it decides the starting mode
// (entering a probe when the site's probation has elapsed) and returns the
// per-execution cursor.
func (s *Site) Begin() Txn {
	cfg := &s.ctl.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mode != ModeHTM && !s.probing {
		due := s.probation
		if due == 0 {
			due = cfg.Probation
		}
		if s.commitsSinceDemote >= due {
			s.probing = true
			s.probeTarget = s.probeTargetLocked()
			s.probeWins = 0
		}
	}
	mode := s.mode
	probe := false
	if s.probing {
		mode = s.probeTarget
		probe = true
	}
	return Txn{site: s, mode: mode, probe: probe}
}

// probeTargetLocked picks where a demoted site probes: normally HTM, but a
// lock-mode site whose window is capacity-dominated probes STM instead —
// hardware will just overflow again, software has no capacity limit.
func (s *Site) probeTargetLocked() Mode {
	if s.mode == ModeLock && s.counts[entryAbortCapacity] > s.counts[entryAbortConflict] {
		return ModeSTM
	}
	return ModeHTM
}

// Txn is the per-execution cursor: internal/tm drives it with the outcome of
// every attempt and follows the mode it dictates.
type Txn struct {
	site *Site
	mode Mode
	// probe marks an execution probing a faster mode during probation.
	probe bool
	// attempts and capAborts count hardware attempts of this execution.
	attempts  int
	capAborts int
	// conflicts counts consecutive conflict aborts (the backoff exponent).
	conflicts int
	// backoff is the pending pre-attempt backoff in cycles (pre-jitter).
	backoff int
}

// Mode returns the mode the next attempt must run in.
func (t *Txn) Mode() Mode { return t.mode }

// Probing reports whether this execution is a probation probe.
func (t *Txn) Probing() bool { return t.probe }

// Backoff returns the jittered pre-attempt pause in cost cycles (0 when no
// backoff is pending). intn must return a uniform value in [0,n); callers
// pass their deterministic per-thread PRNG so virtual-time runs stay
// reproducible.
func (t *Txn) Backoff(intn func(n int) int) int {
	if t.backoff <= 0 {
		return 0
	}
	// Jitter in [backoff/2, backoff): desynchronises retry storms without
	// ever waiting longer than the exponential envelope.
	return t.backoff/2 + intn((t.backoff+1)/2)
}

// Abort records one aborted attempt of class c and decides how to continue:
// the returned transition is non-zero when the site's steady mode changed
// (the caller emits it as an event), and t.Mode() reflects the mode of the
// next attempt.
func (t *Txn) Abort(c Class) Transition {
	s := t.site
	cfg := &s.ctl.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	s.aborts++
	t.attempts++

	if t.probe {
		return t.abortProbeLocked(c)
	}

	switch t.mode {
	case ModeHTM:
		switch c {
		case ClassCapacity:
			s.record(entryAbortCapacity)
			t.capAborts++
			t.backoff = 0
			if s.counts[entryAbortCapacity] >= cfg.CapacityDemote {
				// The window shows persistent overflow: demote the site.
				// Straight to the lock when conflicts dominate too — STM
				// would only convert capacity aborts into validation aborts.
				to := ModeSTM
				if s.counts[entryAbortConflict] >= cfg.LockDemote {
					to = ModeLock
				}
				tr := s.transitionLocked(to)
				t.mode = to
				t.probe = false
				return tr
			}
			if t.capAborts > cfg.CapacityRetry {
				// Execution-local fallback: this execution will not fit.
				t.mode = ModeSTM
			}
		case ClassConflict:
			s.record(entryAbortConflict)
			t.conflicts++
			shift := t.conflicts - 1
			if shift > cfg.BackoffMaxShift {
				shift = cfg.BackoffMaxShift
			}
			t.backoff = cfg.BackoffBase << shift
			if t.attempts >= cfg.HTMRetry {
				t.mode = ModeLock // one-shot serialisation, not a demotion
			}
		case ClassLockConflict:
			s.record(entryAbortLock)
			t.backoff = 0
			if t.attempts >= cfg.HTMRetry {
				t.mode = ModeLock
			}
		default:
			s.record(entryAbortOther)
			t.backoff = 0
			if t.attempts >= cfg.HTMRetry {
				t.mode = ModeLock
			}
		}
	case ModeSTM:
		if c == ClassLockConflict {
			// The held lock aborted the (lock-word-subscribed) software
			// transaction; the caller's WaitUntilFree is the right wait and
			// the abort says nothing about STM suitability.
			s.record(entryAbortLock)
			t.backoff = 0
			return Transition{}
		}
		s.record(entryAbortSTM)
		if s.counts[entryAbortSTM] >= cfg.STMDemote {
			tr := s.transitionLocked(ModeLock)
			t.mode = ModeLock
			return tr
		}
		t.conflicts++
		shift := t.conflicts - 1
		if shift > cfg.BackoffMaxShift {
			shift = cfg.BackoffMaxShift
		}
		t.backoff = cfg.BackoffBase << shift
	case ModeLock:
		// Irrevocable executions cannot abort; nothing to decide.
	}
	return Transition{}
}

// abortProbeLocked handles an abort during a probation probe: capacity
// aborts fail the probe immediately (the demotion cause persists), anything
// else gets ProbeRetry attempts. A failed probe returns the execution to the
// steady demoted mode and lengthens the probation.
func (t *Txn) abortProbeLocked(c Class) Transition {
	s := t.site
	cfg := &s.ctl.cfg
	failed := c == ClassCapacity || c == ClassSTMConflict || t.attempts >= cfg.ProbeRetry
	switch c {
	case ClassCapacity:
		s.record(entryAbortCapacity)
	case ClassConflict:
		s.record(entryAbortConflict)
	case ClassSTMConflict:
		s.record(entryAbortSTM)
	case ClassLockConflict:
		s.record(entryAbortLock)
	default:
		s.record(entryAbortOther)
	}
	if !failed {
		t.conflicts++
		t.backoff = cfg.BackoffBase << (t.conflicts - 1)
		return Transition{}
	}
	s.probing = false
	s.probeWins = 0
	s.commitsSinceDemote = 0
	base := s.probation
	if base == 0 {
		base = cfg.Probation
	}
	base *= cfg.ProbationGrowth
	if base > cfg.ProbationMax {
		base = cfg.ProbationMax
	}
	s.probation = base
	t.probe = false
	t.mode = s.mode
	t.backoff = 0
	return Transition{}
}

// Commit records a successful execution in t.Mode() and returns a non-zero
// transition when it completed a promotion (the probe hysteresis was
// satisfied).
func (t *Txn) Commit() Transition {
	s := t.site
	cfg := &s.ctl.cfg
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commits[t.mode]++
	switch t.mode {
	case ModeHTM:
		s.record(entryCommitHTM)
	case ModeSTM:
		s.record(entryCommitSTM)
	case ModeLock:
		s.record(entryCommitLock)
	}

	if t.probe {
		s.probeWins++
		if s.probeWins >= cfg.ProbeWins {
			return s.transitionLocked(t.mode)
		}
		return Transition{}
	}

	// Injected mode thrash: rotate the steady mode for no reason at all.
	// The site keeps executing correctly in whatever mode it lands in and
	// the probation machinery eventually climbs back — the cost is wasted
	// transitions, which is exactly what the chaos suite measures.
	if s.faults != nil && s.faults.Roll(chaos.ModeThrash) {
		return s.transitionLocked(Mode((uint8(s.mode) + 1) % uint8(numModes)))
	}

	switch {
	case s.mode != ModeHTM && t.mode == s.mode:
		s.commitsSinceDemote++
	case s.mode == ModeHTM && t.mode == ModeLock:
		// One-shot fallback commits: enough of them demote the site — it is
		// serialising anyway, so stop paying for the failed speculation.
		if s.counts[entryCommitLock] >= cfg.LockDemote {
			return s.transitionLocked(ModeLock)
		}
	}
	return Transition{}
}
