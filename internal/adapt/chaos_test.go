package adapt

import (
	"testing"

	"htmcmp/internal/chaos"
)

// TestChaosModeThrash drives a healthy, always-committing site under a
// certain thrash injection: every commit forces a steady-mode rotation, the
// transitions flow through the ordinary transition path (counted, emitted),
// and the site keeps executing in whatever mode the thrash lands it in.
func TestChaosModeThrash(t *testing.T) {
	cfg := chaos.Config{Seed: 3}
	cfg.OpRates[chaos.ModeThrash] = 1
	in := chaos.New(cfg)
	ctl := NewController(Config{Faults: in})
	site := ctl.SiteFor(0xbeef)

	modes := map[Mode]bool{}
	var transitions uint64
	for i := 0; i < 9; i++ {
		txn := site.Begin()
		modes[txn.Mode()] = true
		if tr := txn.Commit(); tr.Changed {
			transitions++
			if tr.From == tr.To {
				t.Fatalf("self-transition %v -> %v", tr.From, tr.To)
			}
		}
	}
	if transitions == 0 {
		t.Fatal("certain thrash never forced a transition")
	}
	if ctl.Switches() != transitions {
		t.Fatalf("controller counted %d switches, observed %d", ctl.Switches(), transitions)
	}
	if in.Fired(chaos.ModeThrash) != transitions {
		t.Fatalf("injector fired %d, transitions %d", in.Fired(chaos.ModeThrash), transitions)
	}
	// Rotation visits every mode given enough commits.
	if len(modes) != NumModes {
		t.Fatalf("thrash visited %d modes, want %d", len(modes), NumModes)
	}
}

// TestChaosThrashDeterministic pins that two controllers with the same seed
// thrash identically — the per-site streams are derived, not shared.
func TestChaosThrashDeterministic(t *testing.T) {
	run := func() []Mode {
		cfg := chaos.Config{Seed: 17}
		cfg.OpRates[chaos.ModeThrash] = 0.5
		ctl := NewController(Config{Faults: chaos.New(cfg)})
		site := ctl.SiteFor(1)
		var seq []Mode
		for i := 0; i < 50; i++ {
			txn := site.Begin()
			seq = append(seq, txn.Mode())
			txn.Commit()
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mode sequence diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
